// MMPipeline: the file-based workflow a solver integration would use.
// Generate a matrix, write it as Matrix Market, read it back, order it with
// the shared-memory RCM, and write out both the permuted matrix and the
// permutation vector — then re-read everything and verify the round trip.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/rcm"
)

func main() {
	dir, err := os.MkdirTemp("", "mmpipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate and write the input.
	entry, err := rcm.SuiteByName("Serena")
	if err != nil {
		log.Fatal(err)
	}
	a := entry.Build(6)
	inPath := filepath.Join(dir, "serena.mtx")
	if err := rcm.SaveMatrixMarket(inPath, a, true, "Serena analog"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (n=%d nnz=%d bw=%d)\n", inPath, a.N(), a.NNZ(), a.Bandwidth())

	// 2. Read it back and order it.
	read, hdr, err := rcm.LoadMatrixMarket(inPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s %s, nnz=%d\n", hdr.Field, hdr.Symmetry, read.NNZ())
	permuted, res, err := rcm.OrderMatrix(read, rcm.WithBackend(rcm.Shared), rcm.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCM: bandwidth %d -> %d, profile %d -> %d\n",
		res.Before.Bandwidth, res.After.Bandwidth, res.Before.Profile, res.After.Profile)

	// 3. Write the outputs.
	outPath := filepath.Join(dir, "serena_rcm.mtx")
	permPath := filepath.Join(dir, "serena.perm")
	if err := rcm.SaveMatrixMarket(outPath, permuted, true, "RCM-permuted"); err != nil {
		log.Fatal(err)
	}
	if err := rcm.SavePermutation(permPath, res.Perm); err != nil {
		log.Fatal(err)
	}

	// 4. Verify: reading the permutation and re-applying it to the input
	// reproduces the permuted file exactly.
	permBack, err := rcm.LoadPermutation(permPath)
	if err != nil {
		log.Fatal(err)
	}
	again, _, err := rcm.LoadMatrixMarket(outPath)
	if err != nil {
		log.Fatal(err)
	}
	check, err := rcm.Permute(read, permBack)
	if err != nil {
		log.Fatal(err)
	}
	same := check.Equal(again) && rcm.IsPermutation(permBack)
	fmt.Printf("round trip consistent: %v\n", same)
}
