// DistSolve: the full distributed pipeline the paper motivates in §I — the
// matrix is already distributed, so the ordering must happen in place, and
// the reordered system is then solved in place too. This example runs the
// distributed RCM and the distributed PCG back to back on the simulated
// runtime and contrasts the halo traffic of the solve before and after the
// reordering.
package main

import (
	"fmt"
	"log"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/tally"
)

func main() {
	a := graphgen.Thermal2(6) // 50×50 scrambled thermal problem
	fmt.Printf("thermal2 analog: n=%d nnz=%d bandwidth=%d\n", a.N, a.NNZ(), a.Bandwidth())

	// Step 1: order in place on a 4×4 process grid.
	ord := core.Distributed(a, core.DistOptions{
		Procs: 16,
		Model: tally.Edison().WithThreads(6),
	})
	rcm := a.Permute(ord.Perm)
	fmt.Printf("distributed RCM on %d procs: bandwidth -> %d, modelled %.4f s\n",
		ord.Procs, rcm.Bandwidth(), tally.Seconds(ord.Breakdown.TotalNs()))

	// Step 2: solve on the same number of processes, before and after.
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64((i*31)%11) - 5
	}
	natural, err := cg.DistributedPCG(a, b, 16, nil, 1e-6, 5000)
	if err != nil {
		log.Fatal(err)
	}
	ordered, err := cg.DistributedPCG(rcm, b, 16, nil, 1e-6, 5000)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, r *cg.DistResult) {
		fmt.Printf("%-8s %4d iterations, %.1e final rel, %8d halo words, modelled %.4f s\n",
			name, r.Iterations, r.FinalRel, r.Breakdown.Words,
			tally.Seconds(r.Breakdown.ClockNs))
	}
	fmt.Println("\ndistributed PCG on 16 processes:")
	report("natural", natural)
	report("rcm", ordered)
	fmt.Printf("\nhalo traffic reduced %.1fx, time %.1fx\n",
		float64(natural.Breakdown.Words)/float64(ordered.Breakdown.Words),
		natural.Breakdown.ClockNs/ordered.Breakdown.ClockNs)
}
