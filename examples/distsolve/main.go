// DistSolve: the full distributed pipeline the paper motivates in §I — the
// matrix is already distributed, so the ordering must happen in place, and
// the reordered system is then solved in place too. This example runs the
// distributed RCM and the distributed PCG back to back on the simulated
// runtime and contrasts the halo traffic of the solve before and after the
// reordering.
package main

import (
	"fmt"
	"log"

	"repro/rcm"
)

func main() {
	a := rcm.Thermal2(6) // 50×50 scrambled thermal problem
	fmt.Printf("thermal2 analog: n=%d nnz=%d bandwidth=%d\n", a.N(), a.NNZ(), a.Bandwidth())

	// Step 1: order in place on a 4×4 process grid.
	p, res, err := rcm.OrderMatrix(a,
		rcm.WithBackend(rcm.Distributed),
		rcm.WithProcs(16),
		rcm.WithThreads(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed RCM on %d procs: bandwidth -> %d, modelled %.4f s\n",
		res.Procs, res.After.Bandwidth, res.Modeled.Seconds)

	// Step 2: solve on the same number of processes, before and after.
	b := make([]float64, a.N())
	for i := range b {
		b[i] = float64((i*31)%11) - 5
	}
	natural, err := rcm.SolveDistributedPCG(a, b, 16, 1e-6, 5000)
	if err != nil {
		log.Fatal(err)
	}
	ordered, err := rcm.SolveDistributedPCG(p, b, 16, 1e-6, 5000)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, r *rcm.DistSolveResult) {
		fmt.Printf("%-8s %4d iterations, %.1e final rel, %8d halo words, modelled %.4f s\n",
			name, r.Iterations, r.FinalRel, r.Modeled.Words, r.Modeled.Seconds)
	}
	fmt.Println("\ndistributed PCG on 16 processes:")
	report("natural", natural)
	report("rcm", ordered)
	fmt.Printf("\nhalo traffic reduced %.1fx, time %.1fx\n",
		float64(natural.Modeled.Words)/float64(ordered.Modeled.Words),
		natural.Modeled.Seconds/ordered.Modeled.Seconds)
}
