// Quickstart: generate a small 3D mesh, scramble it (the "natural" ordering
// of a matrix that arrives from an application), compute the RCM ordering,
// and look at what happened to the bandwidth and profile.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphgen"
)

func main() {
	// A 20×12×4 plate with a 27-point stencil, then a random symmetric
	// permutation so the sparsity pattern has no usable structure left.
	mesh := graphgen.Grid3D(20, 12, 4, 1, false)
	a, _ := graphgen.Scramble(mesh, 7)

	fmt.Printf("matrix: n=%d nnz=%d\n", a.N, a.NNZ())
	fmt.Printf("before RCM: bandwidth=%d profile=%d\n", a.Bandwidth(), a.Profile())
	fmt.Println(a.SpyString(40, 18))

	// The one-call API: Sequential for a single address space. The result
	// is a permutation in symrcm convention (Perm[k] = old index of the
	// row placed at position k).
	ord := core.Sequential(a)
	p := a.Permute(ord.Perm)

	fmt.Printf("after RCM:  bandwidth=%d profile=%d (pseudo-diameter %d, %d component(s))\n",
		p.Bandwidth(), p.Profile(), ord.PseudoDiameter, ord.Components)
	fmt.Println(p.SpyString(40, 18))
}
