// Quickstart: generate a small 3D mesh, scramble it (the "natural" ordering
// of a matrix that arrives from an application), compute the RCM ordering,
// and look at what happened to the bandwidth and profile.
package main

import (
	"fmt"
	"log"

	"repro/rcm"
)

func main() {
	// A 20×12×4 plate with a 27-point stencil, then a random symmetric
	// permutation so the sparsity pattern has no usable structure left.
	mesh := rcm.Grid3D(20, 12, 4, 1, false)
	a, _ := rcm.Scramble(mesh, 7)

	fmt.Printf("matrix: n=%d nnz=%d\n", a.N(), a.NNZ())
	fmt.Printf("before RCM: bandwidth=%d profile=%d\n", a.Bandwidth(), a.Profile())
	fmt.Println(a.SpyString(40, 18))

	// The one-call API: OrderMatrix computes the permutation (symrcm
	// convention: Perm[k] = old index of the row placed at position k)
	// and applies it in one step.
	p, res, err := rcm.OrderMatrix(a)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after RCM:  bandwidth=%d profile=%d (pseudo-diameter %d, %d component(s))\n",
		res.After.Bandwidth, res.After.Profile, res.PseudoDiameter, res.Components)
	fmt.Println(p.SpyString(40, 18))
}
