// Heuristics: sweep the facade's configuration surface on one matrix —
// every backend, every starting-vertex heuristic, and every distributed
// sort mode — and compare the ordering quality each one achieves. The
// pluggable starting-node policy is the knob RCM++ (arXiv:2409.04171)
// argues matters; the sort modes are the paper's §VI future-work
// alternatives that trade quality for communication.
package main

import (
	"fmt"
	"log"

	"repro/rcm"
)

func main() {
	a, _ := rcm.Scramble(rcm.Grid3D(15, 10, 4, 1, false), 11)
	fmt.Printf("27-point mesh, scrambled: n=%d nnz=%d bandwidth=%d profile=%d\n\n",
		a.N(), a.NNZ(), a.Bandwidth(), a.Profile())

	row := func(label string, opts ...rcm.Option) {
		res, err := rcm.Order(a, opts...)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s bandwidth=%-5d profile=%-8d rmswf=%-8.1f pseudo-diameter=%d\n",
			label, res.After.Bandwidth, res.After.Profile, res.After.RMSWavefront,
			res.PseudoDiameter)
	}

	fmt.Println("backends (identical by the deterministic contract):")
	row("sequential")
	row("algebraic", rcm.WithBackend(rcm.Algebraic))
	row("shared, 4 threads", rcm.WithBackend(rcm.Shared), rcm.WithThreads(4))
	row("distributed, 3×3 grid", rcm.WithBackend(rcm.Distributed), rcm.WithProcs(9))

	fmt.Println("\nstarting-vertex heuristics:")
	row("pseudo-peripheral (default)")
	row("bi-criteria (RCM++)", rcm.WithStartHeuristic(rcm.BiCriteria))
	row("bi-criteria, height-leaning", rcm.WithStartHeuristic(rcm.BiCriteria),
		rcm.WithBiCriteriaWeights(1, 4))
	row("min-degree", rcm.WithStartHeuristic(rcm.MinDegree))
	row("first-vertex", rcm.WithStartHeuristic(rcm.FirstVertex))
	row("pinned start 0", rcm.WithStartHeuristic(rcm.FirstVertex), rcm.WithStartVertex(0))

	fmt.Println("\ndistributed sort modes (§VI):")
	row("full distributed sort", rcm.WithBackend(rcm.Distributed), rcm.WithProcs(9))
	row("process-local sort", rcm.WithBackend(rcm.Distributed), rcm.WithProcs(9),
		rcm.WithSortMode(rcm.SortLocal))
	row("no sort", rcm.WithBackend(rcm.Distributed), rcm.WithProcs(9),
		rcm.WithSortMode(rcm.SortNone))

	fmt.Println("\nplain Cuthill-McKee (no reversal) keeps the bandwidth, not the profile:")
	row("rcm", rcm.WithBackend(rcm.Sequential))
	row("cm", rcm.WithoutReverse())
}
