// Distributed: run the paper's distributed-memory RCM on the simulated
// bulk-synchronous runtime — a 6×6 process grid with six threads per
// process (216 "cores") — and inspect the modelled phase breakdown that
// Figs. 4 and 5 are built from. Also verifies the central determinism
// property: the distributed ordering is identical to the sequential one.
package main

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/tally"
)

func main() {
	// The ldoor analog at a small scale: a long thin plate, the kind of
	// high-diameter problem the paper highlights as hard for
	// level-synchronous BFS.
	a := graphgen.SuiteByName("ldoor").Build(3)
	fmt.Printf("ldoor analog: n=%d nnz=%d bandwidth=%d\n", a.N, a.NNZ(), a.Bandwidth())

	ord := core.Distributed(a, core.DistOptions{
		Procs:   36,                            // 6×6 process grid
		Model:   tally.Edison().WithThreads(6), // hybrid MPI+OpenMP, t=6
		Options: core.Options{Start: -1},
	})

	fmt.Printf("\nordered on %d procs × %d threads = %d cores\n", ord.Procs, ord.Threads, ord.Procs*ord.Threads)
	fmt.Printf("bandwidth after RCM: %d (pseudo-diameter %d)\n",
		a.Permute(ord.Perm).Bandwidth(), ord.PseudoDiameter)

	b := ord.Breakdown
	fmt.Printf("\nmodelled time %.4f s, breakdown:\n", tally.Seconds(b.TotalNs()))
	for p := tally.Phase(0); p < tally.NumPhases; p++ {
		fmt.Printf("  %-18s comp %.4f s   comm %.4f s\n", p,
			tally.Seconds(b.CompNs[p]), tally.Seconds(b.CommNs[p]))
	}
	fmt.Printf("traffic: %d messages, %d words moved\n", b.Msgs, b.Words)

	// Determinism: any process count gives the sequential permutation.
	seq := core.Sequential(a)
	fmt.Printf("\ndistributed == sequential ordering: %v\n", reflect.DeepEqual(ord.Perm, seq.Perm))
}
