// Distributed: run the paper's distributed-memory RCM on the simulated
// bulk-synchronous runtime — a 6×6 process grid with six threads per
// process (216 "cores") — and inspect the modelled phase breakdown that
// Figs. 4 and 5 are built from. Also verifies the central determinism
// property: the distributed ordering is identical to the sequential one.
package main

import (
	"fmt"
	"log"
	"reflect"

	"repro/rcm"
)

func main() {
	// The ldoor analog at a small scale: a long thin plate, the kind of
	// high-diameter problem the paper highlights as hard for
	// level-synchronous BFS.
	entry, err := rcm.SuiteByName("ldoor")
	if err != nil {
		log.Fatal(err)
	}
	a := entry.Build(3)
	fmt.Printf("ldoor analog: n=%d nnz=%d bandwidth=%d\n", a.N(), a.NNZ(), a.Bandwidth())

	res, err := rcm.Order(a,
		rcm.WithBackend(rcm.Distributed),
		rcm.WithProcs(36),  // 6×6 process grid
		rcm.WithThreads(6)) // hybrid MPI+OpenMP, t=6
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nordered on %d procs × %d threads = %d cores\n",
		res.Procs, res.Threads, res.Procs*res.Threads)
	fmt.Printf("bandwidth after RCM: %d (pseudo-diameter %d)\n",
		res.After.Bandwidth, res.PseudoDiameter)

	b := res.Modeled
	fmt.Printf("\nmodelled time %.4f s, breakdown:\n%s", b.Seconds, b.Table())
	fmt.Printf("traffic: %d messages, %d words moved\n", b.Messages, b.Words)

	// Determinism: any process count gives the sequential permutation.
	seq, err := rcm.Order(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed == sequential ordering: %v\n", reflect.DeepEqual(res.Perm, seq.Perm))
}
