// Command rcmserve runs the ordering service over HTTP: a bounded worker
// pool executing rcm.Order jobs behind a content-addressed result cache
// with single-flight deduplication (package repro/rcm/service).
//
//	rcmserve [-addr :8077] [-workers 4] [-queue 16] [-cache-mb 256]
//	         [-backend sequential] [-procs 0] [-threads 0]
//	         [-heuristic pseudo-peripheral] [-direction auto] [-sort full]
//	         [-drain-wait 2s]
//
// On SIGTERM/SIGINT the server drains gracefully: /healthz flips to 503
// "draining" so a routing tier (cmd/rcmproxy) stops sending new work,
// in-flight requests finish, and the final stats snapshot is logged as a
// JSON line.
//
// The -backend/-procs/-threads/-heuristic/-direction/-sort flags are
// server-side defaults; every request may override them with query
// parameters. See OPERATIONS.md for the API reference, curl examples and
// sizing guidance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/rcm/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "HTTP listen address")
		drainWait = flag.Duration("drain-wait", 2*time.Second, "time to advertise draining on /healthz before closing the listener, so routing tiers stop sending new work")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "queued-job bound before backpressure (0 = 4 × workers)")
		cacheMB   = flag.Int64("cache-mb", 256, "result cache byte budget in MiB (negative disables caching)")
		maxUpMB   = flag.Int64("max-upload-mb", 1024, "per-request upload cap in MiB (decoded matrices are ~8-16x larger)")
		ordering  = flag.String("ordering", "", "default ordering family: rcm|amd|sloan")
		backend   = flag.String("backend", "", "default backend: sequential|algebraic|shared|distributed")
		procs     = flag.Int("procs", 0, "default simulated process count for the distributed backend")
		threads   = flag.Int("threads", 0, "default thread count (shared backend / distributed model)")
		heur      = flag.String("heuristic", "", "default starting-vertex heuristic")
		dir       = flag.String("direction", "", "default traversal direction policy")
		sortM     = flag.String("sort", "", "default distributed frontier sort mode")
		compS     = flag.Bool("compsched", false, "enable component scheduling by default (small components ordered concurrently)")
		compT     = flag.Int("compthreshold", 0, "default component-scheduling size threshold (0 = built-in default)")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     cacheBytes,
		MaxUploadBytes: *maxUpMB << 20,
		DefaultSpec: service.Spec{
			Ordering:      *ordering,
			Backend:       *backend,
			Procs:         *procs,
			Threads:       *threads,
			Heuristic:     *heur,
			Direction:     *dir,
			Sort:          *sortM,
			CompSched:     compSched(*compS),
			CompThreshold: *compT,
		},
	})

	srv := &http.Server{Addr: *addr, Handler: logRequests(service.NewHandler(svc))}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Graceful drain: advertise 503 on /healthz first so routing
		// tiers (rcmproxy) take this replica out of rotation, keep
		// serving on open connections for drain-wait, then close the
		// listener and let in-flight requests finish.
		svc.SetDraining(true)
		log.Printf("rcmserve: draining (healthz 503) for %s", *drainWait)
		time.Sleep(*drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("rcmserve: shutdown: %v", err)
		}
		svc.Close()
		if final, err := json.Marshal(svc.Stats()); err == nil {
			log.Printf("rcmserve: final stats %s", final)
		}
	}()

	log.Printf("rcmserve: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "rcmserve: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// logRequests is a one-line access log: method, path, status, cache
// disposition and wall time.
// compSched maps the boolean flag onto the Spec's tri-state field: false
// stays nil so per-request compsched=1 still works without a server default.
func compSched(on bool) *bool {
	if !on {
		return nil
	}
	return service.Bool(true)
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		cache := rec.Header().Get("X-Cache")
		if cache == "" {
			cache = "-"
		}
		log.Printf("%s %s %d cache=%s %.3fs", r.Method, r.URL.Path, rec.status, cache, time.Since(start).Seconds())
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
