// Command rcmlint runs the repo's static-analysis suite (internal/lint)
// over the module: mapiter, lockstep, hotalloc, unsafeguard, nopanic — the
// determinism, BSP-lockstep, and hot-path invariants the distributed RCM's
// correctness rests on, enforced at build time.
//
// Usage:
//
//	go run ./cmd/rcmlint [-json] [packages]
//
// With no package arguments it analyzes ./... from the module root. Exit
// status is 0 with no findings, 1 when diagnostics were reported, 2 on a
// loading or usage error. -json emits the diagnostics as a JSON array
// ({check, file, line, col, message}) for tooling; the default output is
// one file:line:col: check: message per line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcmlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &lint.Loader{Dir: root}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(lint.DefaultConfig(), root, pkgs)

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "rcmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod, so
// rcmlint analyzes the whole module regardless of the invocation directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
