// Command rcmproxy fronts a fleet of rcmserve replicas with the routing
// tier in package repro/rcm/service/cluster: consistent-hash routing on
// the content-addressed cache key (so the fleet behaves as one sharded
// cache), request coalescing, bounded-load spill, and 429 + Retry-After
// admission control.
//
//	rcmproxy -replicas http://10.0.0.1:8077,http://10.0.0.2:8077 \
//	         [-addr :8076] [-vnodes 64] [-max-inflight 32] [-queue-depth 128] \
//	         [-hot-mb 0] [-max-upload-mb 1024] [-health-interval 2s] \
//	         [-backend ...] [-procs ...] [-threads ...] [-heuristic ...] \
//	         [-direction ...] [-sort ...] [-compsched] [-compthreshold ...]
//
// Replica IDs default to the URL's host:port; give explicit IDs as
// id=url entries when hosts can be readdressed (the ID is the identity
// on the hash ring — renaming moves its keyspace). The default-spec
// flags must mirror the replicas' own flags so the proxy computes the
// same cache key a replica will; a mismatch only degrades routing
// locality, never correctness. See OPERATIONS.md, "Running a fleet".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/rcm/service"
	"repro/rcm/service/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", ":8076", "HTTP listen address")
		replicasCSV = flag.String("replicas", "", "comma-separated replica base URLs, each url or id=url (required)")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		maxInflight = flag.Int("max-inflight", 32, "concurrent upstream requests per replica before spilling along the ring")
		queueDepth  = flag.Int("queue-depth", 0, "queued requests per replica before shedding with 429 (0 = 4 x max-inflight)")
		hotMB       = flag.Int64("hot-mb", 0, "proxy-side hot-key response cache in MiB (0 disables)")
		maxUpMB     = flag.Int64("max-upload-mb", 1024, "per-request upload cap in MiB")
		healthIvl   = flag.Duration("health-interval", 2*time.Second, "replica /healthz probe period (negative disables probing; errored replicas then rejoin after a short cooldown)")
		ordering    = flag.String("ordering", "", "replicas' default ordering family: rcm|amd|sloan")
		backend     = flag.String("backend", "", "replicas' default backend (must mirror the rcmserve flags)")
		procs       = flag.Int("procs", 0, "replicas' default simulated process count")
		threads     = flag.Int("threads", 0, "replicas' default thread count")
		heur        = flag.String("heuristic", "", "replicas' default starting-vertex heuristic")
		dir         = flag.String("direction", "", "replicas' default traversal direction policy")
		sortM       = flag.String("sort", "", "replicas' default distributed frontier sort mode")
		compS       = flag.Bool("compsched", false, "replicas enable component scheduling by default")
		compT       = flag.Int("compthreshold", 0, "replicas' default component-scheduling threshold")
	)
	flag.Parse()

	replicas, err := parseReplicas(*replicasCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmproxy: %v\n", err)
		os.Exit(2)
	}
	proxy, err := cluster.New(cluster.Config{
		Replicas:       replicas,
		VNodes:         *vnodes,
		MaxInflight:    *maxInflight,
		MaxQueueDepth:  *queueDepth,
		HotCacheBytes:  *hotMB << 20,
		MaxUploadBytes: *maxUpMB << 20,
		HealthInterval: *healthIvl,
		DefaultSpec: service.Spec{
			Ordering:      *ordering,
			Backend:       *backend,
			Procs:         *procs,
			Threads:       *threads,
			Heuristic:     *heur,
			Direction:     *dir,
			Sort:          *sortM,
			CompSched:     compSched(*compS),
			CompThreshold: *compT,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmproxy: %v\n", err)
		os.Exit(2)
	}

	srv := &http.Server{Addr: *addr, Handler: logRequests(proxy)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("rcmproxy: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("rcmproxy: shutdown: %v", err)
		}
		proxy.Close()
	}()

	for _, r := range replicas {
		log.Printf("rcmproxy: replica %s -> %s", r.ID, r.URL)
	}
	log.Printf("rcmproxy: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "rcmproxy: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// parseReplicas decodes the -replicas list: each entry a base URL, or
// id=url to pin the ring identity explicitly.
func parseReplicas(csv string) ([]cluster.Replica, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("-replicas is required (comma-separated base URLs)")
	}
	var out []cluster.Replica
	for _, entry := range strings.Split(csv, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, raw, found := strings.Cut(entry, "=")
		if !found {
			raw, id = entry, ""
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("bad replica URL %q (want scheme://host:port)", raw)
		}
		if id == "" {
			id = u.Host
		}
		out = append(out, cluster.Replica{ID: id, URL: raw})
	}
	return out, nil
}

// compSched maps the boolean flag onto the Spec's tri-state field: false
// stays nil so per-request compsched=1 still works without a default.
func compSched(on bool) *bool {
	if !on {
		return nil
	}
	return service.Bool(true)
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		replica := rec.Header().Get("X-RCM-Replica")
		if replica == "" {
			replica = "-"
		}
		cache := rec.Header().Get("X-Cache")
		if cache == "" {
			cache = "-"
		}
		log.Printf("%s %s %d replica=%s cache=%s %.3fs", r.Method, r.URL.Path, rec.status, replica, cache, time.Since(start).Seconds())
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
