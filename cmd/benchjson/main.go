// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so CI can archive the perf trajectory of
// the hot-path benchmarks as an artifact (BENCH_order.json) instead of a
// log to eyeball.
//
//	go test -run '^$' -bench '^BenchmarkOrder$' -benchtime 1x -benchmem . |
//	    benchjson -o BENCH_order.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) land in dedicated fields;
// any custom metrics reported with testing.B.ReportMetric — such as the
// per-direction BFS level counts td-levels / bu-levels of BenchmarkOrder —
// are collected into the metrics map. Benchmark names of the form
// Benchmark<Name>/<backend>/<matrix>-<procs> additionally populate the
// backend and matrix fields, which is the shape BenchmarkOrder emits.
//
// Compare mode guards the perf trajectory between CI runs:
//
//	benchjson -compare -threshold 0.25 baseline.json fresh.json
//
// matches benchmarks by name, computes the per-benchmark ns/op ratio
// fresh/baseline, and exits nonzero when the MEDIAN ratio exceeds
// 1+threshold — a median so that one noisy single-iteration benchmark
// cannot fail (or mask) the gate on its own. Benchmarks present on only
// one side are reported and skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Backend     string             `json:"backend,omitempty"`
	Matrix      string             `json:"matrix,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, returning ok=false for
// non-benchmark lines (headers, PASS, ok <pkg> ...).
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	// The name carries -<GOMAXPROCS>; sub-benchmark path segments follow
	// the shape Benchmark<Top>/<backend>/<matrix>.
	name := e.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if parts := strings.Split(name, "/"); len(parts) == 3 {
		e.Backend, e.Matrix = parts[1], parts[2]
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	return e, true
}

func run(in io.Reader, out io.Writer) error {
	doc := Doc{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// loadDoc reads a JSON document produced by the default mode.
func loadDoc(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// compare reports the fresh/baseline ns/op ratios and returns the median
// ratio together with whether anything was comparable.
func compare(baseline, fresh Doc, out io.Writer) (median float64, ok bool) {
	base := make(map[string]Entry, len(baseline.Benchmarks))
	for _, e := range baseline.Benchmarks {
		base[e.Name] = e
	}
	var ratios []float64
	for _, e := range fresh.Benchmarks {
		b, found := base[e.Name]
		if !found {
			fmt.Fprintf(out, "%-60s (new benchmark, skipped)\n", e.Name)
			continue
		}
		if b.NsPerOp <= 0 || e.NsPerOp <= 0 {
			continue
		}
		r := e.NsPerOp / b.NsPerOp
		ratios = append(ratios, r)
		fmt.Fprintf(out, "%-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", e.Name, b.NsPerOp, e.NsPerOp, 100*(r-1))
	}
	if len(ratios) == 0 {
		return 0, false
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		median = ratios[mid]
	} else {
		median = (ratios[mid-1] + ratios[mid]) / 2
	}
	return median, true
}

// runCompare implements -compare; returns the process exit code.
func runCompare(oldPath, newPath string, threshold float64, out io.Writer) int {
	baseline, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintf(out, "benchjson: baseline: %v\n", err)
		return 1
	}
	fresh, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintf(out, "benchjson: fresh: %v\n", err)
		return 1
	}
	median, ok := compare(baseline, fresh, out)
	if !ok {
		fmt.Fprintln(out, "benchjson: no comparable benchmarks; passing")
		return 0
	}
	fmt.Fprintf(out, "median ratio %.3f (threshold %.3f)\n", median, 1+threshold)
	if median > 1+threshold {
		fmt.Fprintf(out, "benchjson: median regression %.1f%% exceeds %.0f%%\n", 100*(median-1), 100*threshold)
		return 1
	}
	return 0
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two JSON documents: benchjson -compare baseline.json fresh.json")
	threshold := flag.Float64("threshold", 0.25, "with -compare: fail when the median ns/op ratio exceeds 1+threshold")
	flag.Parse()
	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline.json fresh.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout))
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
