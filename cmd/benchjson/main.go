// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so CI can archive the perf trajectory of
// the hot-path benchmarks as an artifact (BENCH_order.json) instead of a
// log to eyeball.
//
//	go test -run '^$' -bench '^BenchmarkOrder$' -benchtime 1x -benchmem . |
//	    benchjson -o BENCH_order.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) land in dedicated fields;
// any custom metrics reported with testing.B.ReportMetric — such as the
// per-direction BFS level counts td-levels / bu-levels of BenchmarkOrder —
// are collected into the metrics map. Benchmark names of the form
// Benchmark<Name>/<backend>/<matrix>-<procs> additionally populate the
// backend and matrix fields, which is the shape BenchmarkOrder emits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Backend     string             `json:"backend,omitempty"`
	Matrix      string             `json:"matrix,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, returning ok=false for
// non-benchmark lines (headers, PASS, ok <pkg> ...).
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	// The name carries -<GOMAXPROCS>; sub-benchmark path segments follow
	// the shape Benchmark<Top>/<backend>/<matrix>.
	name := e.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if parts := strings.Split(name, "/"); len(parts) == 3 {
		e.Backend, e.Matrix = parts[1], parts[2]
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	return e, true
}

func run(in io.Reader, out io.Writer) error {
	doc := Doc{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
