package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/rcm
cpu: whatever
BenchmarkOrder/distributed/ldoor-8         	     138	   8700123 ns/op	 2260000 B/op	   15680 allocs/op	        47.0 td-levels	        70.0 bu-levels
BenchmarkOrder/sequential/Serena-8         	    2000	    612345 ns/op	  120000 B/op	     300 allocs/op
BenchmarkComm/allgather-8                  	   10000	       123 ns/op
PASS
ok  	repro/rcm	4.2s
`

func TestParseBenchOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Backend != "distributed" || e.Matrix != "ldoor" {
		t.Errorf("name split: backend=%q matrix=%q", e.Backend, e.Matrix)
	}
	if e.Iterations != 138 || e.NsPerOp != 8700123 || e.BytesPerOp != 2260000 || e.AllocsPerOp != 15680 {
		t.Errorf("columns: %+v", e)
	}
	if e.Metrics["td-levels"] != 47 || e.Metrics["bu-levels"] != 70 {
		t.Errorf("custom metrics: %v", e.Metrics)
	}
	if doc.Benchmarks[1].Metrics != nil {
		t.Errorf("unexpected metrics on plain line: %v", doc.Benchmarks[1].Metrics)
	}
	if doc.Benchmarks[2].Backend != "" {
		t.Errorf("two-segment name should not split: %+v", doc.Benchmarks[2])
	}
}
