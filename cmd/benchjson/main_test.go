package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/rcm
cpu: whatever
BenchmarkOrder/distributed/ldoor-8         	     138	   8700123 ns/op	 2260000 B/op	   15680 allocs/op	        47.0 td-levels	        70.0 bu-levels
BenchmarkOrder/sequential/Serena-8         	    2000	    612345 ns/op	  120000 B/op	     300 allocs/op
BenchmarkComm/allgather-8                  	   10000	       123 ns/op
PASS
ok  	repro/rcm	4.2s
`

func TestParseBenchOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Backend != "distributed" || e.Matrix != "ldoor" {
		t.Errorf("name split: backend=%q matrix=%q", e.Backend, e.Matrix)
	}
	if e.Iterations != 138 || e.NsPerOp != 8700123 || e.BytesPerOp != 2260000 || e.AllocsPerOp != 15680 {
		t.Errorf("columns: %+v", e)
	}
	if e.Metrics["td-levels"] != 47 || e.Metrics["bu-levels"] != 70 {
		t.Errorf("custom metrics: %v", e.Metrics)
	}
	if doc.Benchmarks[1].Metrics != nil {
		t.Errorf("unexpected metrics on plain line: %v", doc.Benchmarks[1].Metrics)
	}
	if doc.Benchmarks[2].Backend != "" {
		t.Errorf("two-segment name should not split: %+v", doc.Benchmarks[2])
	}
}

func mkDoc(ns ...float64) Doc {
	d := Doc{}
	names := []string{"A", "B", "C", "D", "E"}
	for i, v := range ns {
		d.Benchmarks = append(d.Benchmarks, Entry{Name: names[i], NsPerOp: v})
	}
	return d
}

func TestCompareMedian(t *testing.T) {
	var out bytes.Buffer
	base := mkDoc(100, 100, 100)
	// Ratios 1.0, 1.1, 2.0 -> median 1.1: inside a 25% threshold even
	// though one benchmark doubled.
	med, ok := compare(base, mkDoc(100, 110, 200), &out)
	if !ok || med != 1.1 {
		t.Fatalf("median = %v, %v", med, ok)
	}
	// Even count: mean of the middle two (1.2 and 1.4, up to rounding).
	med, ok = compare(mkDoc(100, 100, 100, 100), mkDoc(100, 120, 140, 400), &out)
	if !ok || med < 1.299 || med > 1.301 {
		t.Fatalf("even median = %v, %v", med, ok)
	}
	// Unmatched benchmarks are skipped, not compared.
	med, ok = compare(mkDoc(100), Doc{Benchmarks: []Entry{{Name: "zzz", NsPerOp: 1e9}}}, &out)
	if ok {
		t.Fatalf("unmatched compared: %v", med)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Error("skip not reported")
	}
}

func TestRunCompareThreshold(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d Doc) string {
		path := dir + "/" + name
		data, _ := json.Marshal(d)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", mkDoc(100, 100, 100))
	slower := write("slower.json", mkDoc(130, 130, 130)) // median +30%
	faster := write("faster.json", mkDoc(90, 110, 100))  // median 1.0

	var out bytes.Buffer
	if code := runCompare(base, slower, 0.25, &out); code == 0 {
		t.Errorf("30%% median regression passed:\n%s", out.String())
	}
	if code := runCompare(base, slower, 0.50, &out); code != 0 {
		t.Errorf("30%% regression failed a 50%% threshold:\n%s", out.String())
	}
	if code := runCompare(base, faster, 0.25, &out); code != 0 {
		t.Errorf("neutral run failed:\n%s", out.String())
	}
	if code := runCompare(dir+"/missing.json", faster, 0.25, &out); code == 0 {
		t.Error("missing baseline passed")
	}
}

// TestRunByteIdentical pins benchjson's output determinism: converting the
// same bench text repeatedly must produce byte-identical JSON (custom
// metrics live in a map; encoding/json sorts its keys, and nothing else in
// the pipeline may depend on map order).
func TestRunByteIdentical(t *testing.T) {
	const metricsSample = sample +
		"BenchmarkOrder/distributed/audikw-8 \t 10 \t 99 ns/op \t 1.0 td-levels \t 2.0 bu-levels \t 3.0 spills \t 4.0 retries\n"
	var first string
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := run(strings.NewReader(metricsSample), &buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("run %d produced different bytes:\n--- first ---\n%s\n--- now ---\n%s", i, first, buf.String())
		}
	}
}
