// Command rcmorder computes a Reverse Cuthill-McKee ordering of a Matrix
// Market file and reports the bandwidth and profile before and after.
//
//	rcmorder -in matrix.mtx [-method seq|shared|algebraic|dist] [-procs 16]
//	         [-threads 2] [-out permuted.mtx] [-perm order.perm] [-spy]
//
// Non-symmetric inputs are symmetrized (pattern of A ∪ Aᵀ) before ordering,
// like every practical RCM implementation. The distributed method runs on
// the simulated bulk-synchronous runtime and also prints its modelled phase
// breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mmio"
	"repro/internal/spmat"
	"repro/internal/tally"
)

func main() {
	var (
		in      = flag.String("in", "", "input Matrix Market file (required)")
		method  = flag.String("method", "seq", "ordering implementation: seq|shared|algebraic|dist")
		procs   = flag.Int("procs", 16, "simulated processes for -method dist (perfect square)")
		threads = flag.Int("threads", 2, "threads for -method shared / model threads for dist")
		outPath = flag.String("out", "", "write the permuted matrix here (Matrix Market)")
		permOut = flag.String("perm", "", "write the permutation here (1-based, one index per line)")
		spy     = flag.Bool("spy", false, "print before/after ASCII spy plots")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rcmorder: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	a, hdr, err := mmio.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("read %s: n=%d nnz=%d (%s %s)\n", *in, a.N, a.NNZ(), hdr.Field, hdr.Symmetry)
	if !a.IsSymmetricPattern() {
		fmt.Println("pattern not symmetric; ordering the symmetrized pattern A ∪ Aᵀ")
		a = a.Symmetrize()
	}

	start := time.Now()
	var ord *core.Ordering
	switch *method {
	case "seq":
		ord = core.Sequential(a)
	case "shared":
		ord = core.Shared(a, *threads)
	case "algebraic":
		ord = core.Algebraic(a)
	case "dist":
		d := core.Distributed(a, core.DistOptions{
			Procs:   *procs,
			Model:   tally.Edison().WithThreads(*threads),
			Options: core.Options{Start: -1},
		})
		ord = &d.Ordering
		fmt.Printf("modelled distributed time: %.4f s across %d procs × %d threads\n",
			tally.Seconds(d.Breakdown.TotalNs()), d.Procs, d.Threads)
		for p := tally.Phase(0); p < tally.NumPhases; p++ {
			fmt.Printf("  %-18s %.4f s\n", p, tally.Seconds(d.Breakdown.PhaseNs(p)))
		}
	default:
		fmt.Fprintf(os.Stderr, "rcmorder: unknown method %q\n", *method)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if !spmat.IsPerm(ord.Perm) {
		fmt.Fprintln(os.Stderr, "rcmorder: internal error: invalid permutation")
		os.Exit(1)
	}
	p := a.Permute(ord.Perm)
	fmt.Printf("method=%s wall=%.3fs components=%d pseudo-diameter=%d\n",
		*method, elapsed.Seconds(), ord.Components, ord.PseudoDiameter)
	fmt.Printf("bandwidth: %d -> %d\n", a.Bandwidth(), p.Bandwidth())
	fmt.Printf("profile:   %d -> %d\n", a.Profile(), p.Profile())

	if *spy {
		fmt.Printf("before:\n%s\nafter:\n%s", a.SpyString(48, 24), p.SpyString(48, 24))
	}
	if *outPath != "" {
		if err := mmio.WriteFile(*outPath, p, p.IsSymmetricPattern(), "RCM-permuted by rcmorder"); err != nil {
			fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *permOut != "" {
		if err := mmio.WritePerm(*permOut, ord.Perm); err != nil {
			fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *permOut)
	}
}
