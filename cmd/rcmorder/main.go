// Command rcmorder computes a Reverse Cuthill-McKee ordering of a Matrix
// Market file and reports the bandwidth and profile before and after.
//
//	rcmorder -in matrix.mtx [-method seq|shared|algebraic|dist] [-procs 16]
//	         [-threads 2] [-start pseudo-peripheral|bi-criteria|min-degree|first-vertex]
//	         [-out permuted.mtx] [-perm order.perm] [-spy]
//
// Non-symmetric inputs are symmetrized (pattern of A ∪ Aᵀ) before ordering,
// like every practical RCM implementation. The distributed method runs on
// the simulated bulk-synchronous runtime and also prints its modelled phase
// breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/rcm"
)

func main() {
	var (
		in      = flag.String("in", "", "input Matrix Market file (required)")
		method  = flag.String("method", "seq", "ordering implementation: seq|shared|algebraic|dist")
		procs   = flag.Int("procs", 16, "simulated processes for -method dist (perfect square)")
		threads = flag.Int("threads", 2, "threads for -method shared / model threads for dist")
		start   = flag.String("start", "pseudo-peripheral", "starting-vertex heuristic: pseudo-peripheral|bi-criteria|min-degree|first-vertex")
		outPath = flag.String("out", "", "write the permuted matrix here (Matrix Market)")
		permOut = flag.String("perm", "", "write the permutation here (1-based, one index per line)")
		spy     = flag.Bool("spy", false, "print before/after ASCII spy plots")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rcmorder: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	backend, err := rcm.ParseBackend(*method)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
		os.Exit(2)
	}
	heuristic, err := rcm.ParseHeuristic(*start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
		os.Exit(2)
	}

	a, hdr, err := rcm.LoadMatrixMarket(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("read %s: n=%d nnz=%d (%s %s)\n", *in, a.N(), a.NNZ(), hdr.Field, hdr.Symmetry)
	if !a.IsSymmetricPattern() {
		fmt.Println("pattern not symmetric; ordering the symmetrized pattern A ∪ Aᵀ")
	}

	wall := time.Now()
	p, res, err := rcm.OrderMatrix(a,
		rcm.WithBackend(backend),
		rcm.WithProcs(*procs),
		rcm.WithThreads(*threads),
		rcm.WithStartHeuristic(heuristic),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(wall)

	if b := res.Modeled; b != nil {
		fmt.Printf("modelled distributed time: %.4f s across %d procs × %d threads\n",
			b.Seconds, res.Procs, res.Threads)
		fmt.Print(b.Table())
	}
	fmt.Printf("method=%s wall=%.3fs components=%d pseudo-diameter=%d\n",
		res.Backend, elapsed.Seconds(), res.Components, res.PseudoDiameter)
	fmt.Printf("bandwidth: %d -> %d\n", res.Before.Bandwidth, res.After.Bandwidth)
	fmt.Printf("profile:   %d -> %d\n", res.Before.Profile, res.After.Profile)

	if *spy {
		fmt.Printf("before:\n%s\nafter:\n%s", a.SpyString(48, 24), p.SpyString(48, 24))
	}
	if *outPath != "" {
		if err := rcm.SaveMatrixMarket(*outPath, p, p.IsSymmetricPattern(), "RCM-permuted by rcmorder"); err != nil {
			fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *permOut != "" {
		if err := rcm.SavePermutation(*permOut, res.Perm); err != nil {
			fmt.Fprintf(os.Stderr, "rcmorder: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *permOut)
	}
}
