// Command rcmbench regenerates every table and figure of the paper's
// evaluation on the synthetic analog suite. Experiments are selected by id:
//
//	rcmbench -exp fig1               CG + block Jacobi, natural vs RCM (Fig. 1)
//	rcmbench -exp fig3               matrix suite table (Fig. 3)
//	rcmbench -exp table2             shared-memory vs distributed (Table II)
//	rcmbench -exp fig4               strong-scaling runtime breakdown (Fig. 4)
//	rcmbench -exp fig5               SpMSpV computation vs communication (Fig. 5)
//	rcmbench -exp fig6               flat-MPI breakdown, ldoor (Fig. 6)
//	rcmbench -exp ablation-sort      SORTPERM strategies (§VI future work)
//	rcmbench -exp ablation-direction top-down vs bottom-up vs Auto traversal
//	rcmbench -exp ablation-heuristic start-vertex heuristics (RCM++ bi-criteria)
//	rcmbench -exp ablation-semiring  deterministic vs randomized tie-breaking
//	rcmbench -exp ablation-hybrid    threads/process sweep at fixed cores
//	rcmbench -exp ablation-format    CSC vs CSR-scan local kernel (§IV-A)
//	rcmbench -exp quality            ordering quality vs concurrency (§I claim)
//	rcmbench -exp sizesense          scaling limit vs matrix size (§V-D claim)
//	rcmbench -exp sloan              RCM vs Sloan envelope quality (extension)
//	rcmbench -exp ablation-dcsc      CSC vs DCSC block storage (hypersparsity)
//	rcmbench -exp ablation-components component scheduling on/off, shared engine
//	rcmbench -exp ablation-ordering  RCM vs AMD vs Sloan, bandwidth vs fill proxy
//	rcmbench -exp spy                before/after ASCII spy plots (Fig. 3 plots)
//	rcmbench -exp service            ordering-service QPS vs cache hit ratio
//	rcmbench -exp ingest             RCMB ingest strategies + out-of-core digest
//	rcmbench -exp fleet              sharded fleet QPS vs replica count
//	rcmbench -exp all                everything above
//
// The -direction flag forces the traversal direction policy
// (auto|top-down|bottom-up) of every distributed run, and the -heuristic
// flag forces the start-vertex heuristic
// (pseudo-peripheral|bi-criteria|min-degree|first-vertex) of every run, so
// the scaling experiments are sweepable across both the same way -exp
// ablation-sort sweeps SortMode.
//
// Times reported for distributed runs are modelled BSP seconds under the
// machine model (see DESIGN.md); shared-memory times are wall-clock. See
// EXPERIMENTS.md for the full regeneration guide.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/rcm"
	"repro/rcm/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig1|fig3|table2|fig4|fig5|fig6|ablation-sort|ablation-semiring|ablation-hybrid|ablation-format|ablation-dcsc|ablation-components|ablation-direction|ablation-heuristic|ablation-ordering|quality|sizesense|sloan|spy|service|ingest|fleet|all)")
		scale      = flag.Int("scale", 2, "downscale factor for the analog matrices (1 = full analog)")
		maxCores   = flag.Int("maxcores", 0, "skip scaling configurations above this core count (0 = none)")
		matrices   = flag.String("matrices", "", "comma-separated matrix filter (default: all nine)")
		procs      = flag.Int("procs", 16, "process count for the sort and direction ablations")
		amdThreads = flag.Int("amdthreads", 4, "AMD multiple-elimination thread count for the ordering ablation (output is identical at any)")
		dir        = flag.String("direction", "auto", "traversal direction policy for distributed runs (auto|top-down|bottom-up)")
		heur       = flag.String("heuristic", "pseudo-peripheral", "start-vertex heuristic for every run (pseudo-peripheral|bi-criteria|min-degree|first-vertex)")
		alpha      = flag.Float64("alpha", 0, "override model latency α in ns (0 = default)")
		beta       = flag.Float64("beta", 0, "override model inverse bandwidth β in ns/word (0 = default)")
		csvPath    = flag.String("csv", "", "also write machine-readable results here (fig1/fig4/fig5/service/ingest/fleet only)")
	)
	flag.Parse()

	direction, err := rcm.ParseDirection(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmbench: %v\n", err)
		os.Exit(2)
	}
	heuristic, err := rcm.ParseHeuristic(*heur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcmbench: %v\n", err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Scale:         *scale,
		MaxCores:      *maxCores,
		AlphaNs:       *alpha,
		BetaNsPerWord: *beta,
		Direction:     direction,
		Heuristic:     heuristic,
		Out:           os.Stdout,
	}
	if *matrices != "" {
		cfg.Matrices = strings.Split(*matrices, ",")
	}

	run := func(id string) bool { return *exp == id || *exp == "all" }
	csvOut := func(write func(w io.Writer) error) {
		if *csvPath == "" {
			return
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcmbench: %v\n", err)
			os.Exit(1)
		}
		if err := write(f); err != nil {
			fmt.Fprintf(os.Stderr, "rcmbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rcmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	ran := false
	if run("fig1") {
		res := bench.RunFig1(cfg)
		if *exp == "fig1" {
			csvOut(res.WriteCSV)
		}
		fmt.Println()
		ran = true
	}
	if run("fig3") {
		bench.RunFig3(cfg)
		fmt.Println()
		ran = true
	}
	if run("table2") {
		bench.RunTable2(cfg)
		ran = true
	}
	if run("fig4") || run("fig5") {
		series := bench.RunHybridScaling(cfg)
		if run("fig4") {
			series.PrintFig4(cfg)
		}
		if run("fig5") {
			series.PrintFig5(cfg)
		}
		if *exp == "fig4" || *exp == "fig5" {
			csvOut(series.WriteCSV)
		}
		ran = true
	}
	if run("fig6") {
		bench.RunFig6(cfg)
		ran = true
	}
	if run("ablation-sort") {
		bench.RunAblationSort(cfg, *procs)
		ran = true
	}
	if run("ablation-direction") {
		bench.RunAblationDirection(cfg, *procs)
		ran = true
	}
	if run("ablation-heuristic") {
		bench.RunAblationHeuristic(cfg, *procs)
		ran = true
	}
	if run("ablation-semiring") {
		bench.RunAblationSemiring(cfg, 3)
		ran = true
	}
	if run("ablation-hybrid") {
		bench.RunAblationHybrid(cfg)
		ran = true
	}
	if run("ablation-format") {
		bench.RunAblationLocalFormat(cfg)
		ran = true
	}
	if run("quality") {
		bench.RunQuality(cfg)
		ran = true
	}
	if run("sizesense") {
		bench.RunSizeSensitivity(cfg, "ldoor")
		ran = true
	}
	if run("sloan") {
		bench.RunSloanComparison(cfg)
		ran = true
	}
	if run("ablation-dcsc") {
		bench.RunAblationDCSC(cfg)
		ran = true
	}
	if run("ablation-components") {
		bench.RunAblationComponents(cfg)
		ran = true
	}
	if run("ablation-ordering") {
		bench.RunAblationOrdering(cfg, *amdThreads)
		ran = true
	}
	if run("service") {
		rows := bench.RunServiceThroughput(cfg)
		if *exp == "service" {
			csvOut(func(w io.Writer) error { return bench.WriteServiceCSV(w, rows) })
		}
		ran = true
	}
	if run("ingest") {
		rows := bench.RunIngest(cfg)
		if *exp == "ingest" {
			csvOut(func(w io.Writer) error { return bench.WriteIngestCSV(w, rows) })
		}
		ran = true
	}
	if run("fleet") {
		rows := bench.RunFleet(cfg)
		if *exp == "fleet" {
			csvOut(func(w io.Writer) error { return bench.WriteFleetCSV(w, rows) })
		}
		ran = true
	}
	if run("spy") {
		names := cfg.Matrices
		if len(names) == 0 {
			names = []string{"ldoor"}
		}
		for _, n := range names {
			before, after, err := bench.SpyPair(cfg, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("%s before RCM:\n%s\n%s after RCM:\n%s\n", n, before, n, after)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rcmbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
