package repro

// One benchmark per table/figure of the paper, plus microbenchmarks of the
// primitives. The figure benchmarks run the same harness code as
// cmd/rcmbench at a reduced scale so `go test -bench=. -benchmem` finishes
// in minutes; use the CLI for full-scale sweeps. Set -v to see the rendered
// tables via -bench with the `benchtables` build note in README.md.

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distmat"
	"repro/internal/graphgen"
	"repro/internal/grid"
	"repro/internal/semiring"
	"repro/internal/spmat"
)

// benchCfg returns the harness configuration used by the figure benchmarks.
func benchCfg(scale, maxCores int) bench.Config {
	return bench.Config{Scale: scale, MaxCores: maxCores, Out: io.Discard}
}

// BenchmarkFig1 regenerates Fig. 1: CG + block-Jacobi solve cost, natural
// vs RCM ordering, across core counts.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunFig1(benchCfg(4, 0))
		if res.BWRCM >= res.BWNatural {
			b.Fatal("RCM did not reduce bandwidth")
		}
	}
}

// BenchmarkFig3MatrixSuite regenerates the Fig. 3 suite table.
func BenchmarkFig3MatrixSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunFig3(benchCfg(4, 0))
		if len(rows) != 9 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkTable2 regenerates Table II: shared-memory RCM (measured) vs
// distributed RCM (modelled) on a single node.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable2(benchCfg(4, 0))
		if len(rows) != 9 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig4 regenerates the Fig. 4 strong-scaling breakdown (capped at
// 216 cores at benchmark scale; the CLI runs the full 4056).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := bench.RunScaling(benchCfg(4, 216), bench.HybridConfigs())
		if len(series) != 9 {
			b.Fatalf("%d series", len(series))
		}
	}
}

// BenchmarkFig5 regenerates the Fig. 5 SpMSpV comp/comm split (same runs as
// Fig. 4, different view; benchmarked separately as the paper reports it
// separately).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := bench.RunScaling(benchCfg(4, 216), bench.HybridConfigs())
		for _, s := range series {
			for _, p := range s.Points {
				if p.SpMSpVComp+p.SpMSpVComm <= 0 {
					b.Fatal("empty SpMSpV split")
				}
			}
		}
	}
}

// BenchmarkFig6 regenerates the Fig. 6 flat-MPI breakdown for ldoor.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := bench.RunFig6(benchCfg(4, 256))
		if len(s.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkAblationSort measures the three SORTPERM strategies.
func BenchmarkAblationSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationSort(benchCfg(5, 0), 16)
	}
}

// BenchmarkAblationSemiring measures quality spread under randomized
// tie-breaking.
func BenchmarkAblationSemiring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationSemiring(benchCfg(5, 0), 3)
	}
}

// BenchmarkAblationHybrid sweeps threads/process at fixed cores.
func BenchmarkAblationHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationHybrid(benchCfg(5, 144))
	}
}

// BenchmarkAblationLocalFormat compares the CSC and CSR-scan local kernels.
func BenchmarkAblationLocalFormat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunAblationLocalFormat(benchCfg(5, 0))
	}
}

// BenchmarkQualityVsConcurrency verifies the §I quality claim.
func BenchmarkQualityVsConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunQuality(benchCfg(5, 0), []int{1, 4, 16})
		for _, r := range rows {
			if !r.Identical {
				b.Fatalf("%s: quality varies with concurrency", r.Name)
			}
		}
	}
}

// BenchmarkSizeSensitivity regenerates the scaling-limit-vs-size sweep.
func BenchmarkSizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunSizeSensitivity(benchCfg(0, 216), "ldoor", []int{8, 6, 4})
	}
}

// BenchmarkSloanComparison runs the RCM-vs-Sloan extension experiment.
func BenchmarkSloanComparison(b *testing.B) {
	cfg := benchCfg(5, 0)
	cfg.Matrices = []string{"ldoor", "Serena", "nlpkkt240"}
	for i := 0; i < b.N; i++ {
		bench.RunSloanComparison(cfg)
	}
}

// BenchmarkAblationDCSC measures CSC vs DCSC block storage across grids.
func BenchmarkAblationDCSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunAblationDCSC(benchCfg(4, 676))
		last := rows[len(rows)-1]
		if last.DCSCWords >= last.CSCWords {
			b.Fatal("DCSC did not save memory on hypersparse blocks")
		}
	}
}

// BenchmarkDistributedPCG measures the actual distributed CG solver on the
// simulated runtime (the Fig. 1 configuration).
func BenchmarkDistributedPCG(b *testing.B) {
	a := graphgen.Thermal2(8)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cg.DistributedPCG(a, rhs, 8, nil, 1e-6, 4000)
		if err != nil || !res.Converged {
			b.Fatalf("solve failed: %v %+v", err, res)
		}
	}
}

// --- Microbenchmarks of the primitives -----------------------------------

func benchmarkMatrix() *spmat.CSR {
	return graphgen.SuiteByName("Serena").Build(3)
}

// BenchmarkSequentialRCM measures the classic queue-based RCM.
func BenchmarkSequentialRCM(b *testing.B) {
	a := benchmarkMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Sequential(a)
	}
}

// BenchmarkAlgebraicRCM measures the sequential matrix-algebraic RCM.
func BenchmarkAlgebraicRCM(b *testing.B) {
	a := benchmarkMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Algebraic(a)
	}
}

// BenchmarkSharedRCM measures the SpMP-style shared-memory RCM.
func BenchmarkSharedRCM(b *testing.B) {
	a := benchmarkMatrix()
	for _, t := range []int{1, 2} {
		b.Run(map[int]string{1: "t1", 2: "t2"}[t], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Shared(a, t)
			}
		})
	}
}

// BenchmarkDistributedRCM measures the full distributed algorithm on the
// simulated runtime at several grid sizes (wall time of the simulation, not
// modelled time).
func BenchmarkDistributedRCM(b *testing.B) {
	a := benchmarkMatrix()
	for _, p := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "p1", 4: "p4", 16: "p16"}[p], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Distributed(a, core.DistOptions{Procs: p})
			}
		})
	}
}

// BenchmarkSpMSpV measures one distributed SpMSpV over (select2nd, min)
// with a mid-size frontier on a 2×2 grid.
func BenchmarkSpMSpV(b *testing.B) {
	a := benchmarkMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm.Run(4, nil, func(c *comm.Comm) {
			d := grid.NewDist(grid.Square(c), a.N)
			m := distmat.NewMat(d, a)
			x := distmat.NewSpV(d)
			for g := x.Lo; g < x.Hi; g += 16 {
				x.Loc.Append(g, int64(g))
			}
			m.SpMSpV(x, semiring.Select2ndMin{})
		})
	}
}

// BenchmarkSequentialBFS isolates the BFS substrate.
func BenchmarkSequentialBFS(b *testing.B) {
	a := benchmarkMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.BFS(0)
	}
}

// BenchmarkPermute measures PAPᵀ application.
func BenchmarkPermute(b *testing.B) {
	a := benchmarkMatrix()
	perm := core.Sequential(a).Perm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Permute(perm)
	}
}
