package repro

// End-to-end integration tests across package boundaries: the full
// pipelines a user of the library would run, at miniature scales.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/mmio"
	"repro/internal/spmat"
	"repro/internal/tally"
)

// TestPipelineOrderThenSolve is the paper's §I motivation end to end: a
// distributed matrix is ordered in place and the reordered system solves
// faster and with less communication.
func TestPipelineOrderThenSolve(t *testing.T) {
	a := graphgen.Thermal2(8)
	ord := core.Distributed(a, core.DistOptions{Procs: 9, Model: tally.Edison().WithThreads(6)})
	if !spmat.IsPerm(ord.Perm) {
		t.Fatal("invalid permutation")
	}
	rcm := a.Permute(ord.Perm)
	if rcm.Bandwidth() >= a.Bandwidth()/4 {
		t.Fatalf("bandwidth %d -> %d: weak reduction", a.Bandwidth(), rcm.Bandwidth())
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	nat, err := cg.DistributedPCG(a, b, 9, nil, 1e-6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := cg.DistributedPCG(rcm, b, 9, nil, 1e-6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !nat.Converged || !opt.Converged {
		t.Fatalf("convergence: nat=%v rcm=%v", nat.Converged, opt.Converged)
	}
	if opt.Breakdown.Words >= nat.Breakdown.Words {
		t.Errorf("RCM halo words %d not below natural %d", opt.Breakdown.Words, nat.Breakdown.Words)
	}
	if opt.Iterations > nat.Iterations {
		t.Errorf("RCM iterations %d above natural %d", opt.Iterations, nat.Iterations)
	}
}

// TestPipelineFileRoundTrip exercises generate → write → read → order →
// permute → write → read.
func TestPipelineFileRoundTrip(t *testing.T) {
	a := graphgen.SuiteByName("audikw_1").Build(8)
	var buf bytes.Buffer
	if err := mmio.Write(&buf, a, true, "integration"); err != nil {
		t.Fatal(err)
	}
	read, _, err := mmio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if read.NNZ() != a.NNZ() {
		t.Fatalf("nnz %d vs %d", read.NNZ(), a.NNZ())
	}
	ord := core.Shared(read, 2)
	p := read.Permute(ord.Perm)
	var buf2 bytes.Buffer
	if err := mmio.Write(&buf2, p, true); err != nil {
		t.Fatal(err)
	}
	again, _, err := mmio.Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Bandwidth() != p.Bandwidth() || again.Profile() != p.Profile() {
		t.Error("metrics changed across the file round trip")
	}
}

// TestPipelineAllImplementationsOnSuite runs the four implementations over
// every suite analog at miniature scale and checks the determinism
// contract matrix-wide.
func TestPipelineAllImplementationsOnSuite(t *testing.T) {
	for _, e := range graphgen.Suite() {
		a := e.Build(10)
		want := core.Sequential(a)
		if !spmat.IsPerm(want.Perm) {
			t.Fatalf("%s: invalid sequential permutation", e.Name)
		}
		if got := core.Algebraic(a); !reflect.DeepEqual(want.Perm, got.Perm) {
			t.Errorf("%s: algebraic differs", e.Name)
		}
		if got := core.Shared(a, 2); !reflect.DeepEqual(want.Perm, got.Perm) {
			t.Errorf("%s: shared differs", e.Name)
		}
		if got := core.Distributed(a, core.DistOptions{Procs: 4}); !reflect.DeepEqual(want.Perm, got.Perm) {
			t.Errorf("%s: distributed differs", e.Name)
		}
	}
}

// TestPipelineSloanAndRCMBothImprove checks the two heuristics side by side
// on a mesh, through the public metrics.
func TestPipelineSloanAndRCMBothImprove(t *testing.T) {
	a, _ := graphgen.Scramble(graphgen.Grid3D(7, 5, 4, 1, true), 77)
	before := a.Profile()
	rcm := a.Permute(core.Sequential(a).Perm)
	sloan := a.Permute(core.Sloan(a).Perm)
	if rcm.Profile() >= before || sloan.Profile() >= before {
		t.Errorf("profiles: before=%d rcm=%d sloan=%d", before, rcm.Profile(), sloan.Profile())
	}
	if rcm.Wavefront().RMS <= 0 || sloan.Wavefront().RMS <= 0 {
		t.Error("wavefront stats missing")
	}
}

// TestPipelineGatherVsInPlace quantifies the §V-C comparison: ordering the
// distributed matrix in place versus gathering it to one node first.
func TestPipelineGatherVsInPlace(t *testing.T) {
	a := graphgen.SuiteByName("nlpkkt240").Build(6)
	ord := core.Distributed(a, core.DistOptions{Procs: 16, Model: tally.Edison().WithThreads(6)})
	inPlace := ord.Breakdown.TotalNs()
	// Gathering nnz index words from 16 processes to one:
	m := tally.Edison()
	words := int64(a.NNZ()) * 15 / 16
	gather := m.P2PCost(words) + 15*m.AlphaNs
	if inPlace <= 0 || gather <= 0 {
		t.Fatal("degenerate costs")
	}
	// The point of the comparison is that gathering is not free; at the
	// paper's scale it costs 3x the in-place ordering. At miniature scale
	// we only assert both costs are meaningful and reported.
	t.Logf("in-place %.4fs vs gather %.4fs", tally.Seconds(inPlace), tally.Seconds(gather))
}
